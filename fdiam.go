// Package fdiam computes the exact diameter of large, undirected,
// unweighted, sparse graphs with the F-Diam algorithm (Bradley,
// Mongandampulath Akathoott, Burtscher: "Fast Exact Diameter Computation of
// Sparse Graphs", ICPP 2025).
//
// F-Diam avoids the O(nm) all-pairs approach by removing vertices from
// consideration before their eccentricity is ever computed: a 2-sweep
// initial bound, the novel Winnowing technique (discarding the ball of
// radius bound/2 around a central vertex, justified by the theorems that
// every connected graph has two diameter-attaining vertices and no
// eccentricity below half the diameter), Chain Processing for degree-1
// pendants and degree-2 chains, and partial-BFS Eliminate passes. The few
// remaining eccentricities are computed with a parallel, level-synchronous,
// direction-optimized BFS.
//
// Quick start:
//
//	b := fdiam.NewBuilder(4)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 3)
//	res := fdiam.Diameter(b.Build())
//	fmt.Println(res.Diameter) // 3
//
// For disconnected inputs Result.Infinite is true and Result.Diameter
// reports the largest eccentricity over all connected components, the same
// convention as the paper's implementation.
package fdiam

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"fdiam/internal/baseline"
	"fdiam/internal/core"
	"fdiam/internal/ecc"
	"fdiam/internal/gen"
	"fdiam/internal/graph"
	"fdiam/internal/graphio"
	"fdiam/internal/obs"
)

// Graph is an immutable undirected graph in compressed-sparse-row form.
// Build one with a Builder, a generator, or a loader.
type Graph = graph.Graph

// Builder accumulates edges and produces a clean Graph (self-loops removed,
// parallel edges deduplicated, adjacency sorted).
type Builder = graph.Builder

// Edge is an undirected edge.
type Edge = graph.Edge

// Vertex is a dense vertex identifier in [0, NumVertices).
type Vertex = graph.Vertex

// Options configures a Diameter computation; the zero value runs the full
// parallel algorithm. See the fields for the paper's ablation toggles.
type Options = core.Options

// CheckpointOptions (the Options.Checkpoint field) makes a long solve
// crash-safe: the solver periodically snapshots its state to Dir and a later
// run resuming via ResumeFrom redoes at most one checkpoint interval of
// work. Snapshots are CRC-guarded, bound to the graph's content hash, and
// any resume failure degrades to a fresh — still exact — solve.
type CheckpointOptions = core.CheckpointOptions

// Result is the outcome of a diameter computation, including the per-stage
// statistics (BFS counts, removal percentages, stage timings) the paper
// reports in its evaluation.
type Result = core.Result

// Stats holds the evaluation metrics of a run.
type Stats = core.Stats

//
// Observability — structured run tracing, Chrome trace export, metrics, and
// live progress (see internal/obs).
//

// TraceConfig selects the event sinks of an observability run: a Chrome
// trace-event JSON writer (Perfetto / chrome://tracing), an NDJSON event-log
// writer, and the metrics registry (nil selects DefaultMetrics).
type TraceConfig = obs.Config

// TraceRun is an observability run. Set it as Options.Trace to receive
// run/stage/traversal/level spans and live progress from a Diameter
// computation; call Finish when done to flush the sinks. A nil *TraceRun
// disables all instrumentation with zero overhead.
type TraceRun = obs.Run

// RunSnapshot is the live progress view of a TraceRun (current stage, bound,
// active vertices, elapsed time) — the /progress JSON document.
type RunSnapshot = obs.Snapshot

// MetricsRegistry is a named counter/gauge set with Prometheus text-format
// exposition.
type MetricsRegistry = obs.Registry

// ObservabilityServer is a live /metrics + /progress + /debug/pprof endpoint.
type ObservabilityServer = obs.Server

// NewTraceRun creates an observability run and installs it as the
// process-wide current run (read by /progress).
func NewTraceRun(cfg TraceConfig) *TraceRun { return obs.NewRun(cfg) }

// CurrentTraceRun returns the most recently created TraceRun (possibly
// already finished), or nil.
func CurrentTraceRun() *TraceRun { return obs.Current() }

// DefaultMetrics returns the process-wide metrics registry, where the BFS
// and worker-pool instruments register.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// ServeObservability serves /metrics (Prometheus text), /progress (JSON
// snapshot of the current run), and /debug/pprof on addr (e.g. ":6060", or
// "127.0.0.1:0" for a free port — read it back with Addr). Close the
// returned server to stop.
func ServeObservability(addr string) (*ObservabilityServer, error) { return obs.Serve(addr, nil) }

// NewBuilder creates a Builder for a graph with n vertices (the graph grows
// automatically if larger vertex ids are added).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Diameter computes the exact diameter of g with the full parallel F-Diam
// algorithm.
func Diameter(g *Graph) Result { return core.Diameter(g, core.Options{}) }

// DiameterWithOptions computes the exact diameter with explicit options
// (serial mode, ablations, worker count, timeout).
func DiameterWithOptions(g *Graph, opt Options) Result { return core.Diameter(g, opt) }

// DiameterCtx computes the exact diameter under a context: cancelling ctx
// (or exceeding Options.Timeout) aborts the computation at the next BFS
// level boundary and returns the best lower bound established so far with
// Result.Cancelled (and, for deadlines, Result.TimedOut) set. This is the
// entry point for deadline-bound callers — interactive tools and serving
// layers that must not overshoot a request budget.
func DiameterCtx(ctx context.Context, g *Graph, opt Options) Result {
	return core.DiameterCtx(ctx, g, opt)
}

// Eccentricities computes the exact eccentricity of every vertex by brute
// force (one BFS per vertex, parallelized over sources). O(nm): intended
// for small graphs and validation, not for the workloads F-Diam targets.
func Eccentricities(g *Graph, workers int) []int32 { return ecc.All(g, workers) }

// RadiusAndCenter computes the graph radius (smallest eccentricity) and the
// center vertices attaining it, by brute force. O(nm).
func RadiusAndCenter(g *Graph, workers int) (int32, []Vertex) {
	info := ecc.Compute(g, workers)
	return info.Radius, info.Center
}

// Periphery computes the vertices attaining the diameter, by brute force.
// O(nm).
func Periphery(g *Graph, workers int) []Vertex {
	return ecc.Compute(g, workers).Periphery
}

// BaselineResult is the outcome of one of the prior-work algorithms.
type BaselineResult = baseline.Result

// BaselineOptions configures a baseline run.
type BaselineOptions = baseline.Options

// DiameterIFUB computes the exact diameter with the iFUB algorithm
// (Crescenzi et al. 2013), the primary comparison code in the paper.
func DiameterIFUB(g *Graph, opt BaselineOptions) BaselineResult { return baseline.IFUB(g, opt) }

// DiameterBounding computes the exact diameter with the Graph-Diameter /
// BoundingDiameters eccentricity-bounding scheme (Akiba et al. 2015,
// undirected restriction).
func DiameterBounding(g *Graph, opt BaselineOptions) BaselineResult { return baseline.Bounding(g, opt) }

// DiameterKorf computes the exact diameter with Korf's partial-BFS
// algorithm (2021).
func DiameterKorf(g *Graph, opt BaselineOptions) BaselineResult { return baseline.Korf(g, opt) }

// DiameterNaive computes the exact diameter with one BFS per vertex — the
// O(nm) reference.
func DiameterNaive(g *Graph, opt BaselineOptions) BaselineResult { return baseline.Naive(g, opt) }

// DiameterTakesKosters computes the exact diameter with the adaptive
// BoundingDiameters algorithm (Takes & Kosters 2011) — a stronger selection
// strategy than the paper's Graph-Diameter baseline, provided as an
// extension.
func DiameterTakesKosters(g *Graph, opt BaselineOptions) BaselineResult {
	return baseline.TakesKosters(g, opt)
}

// DiameterVertexCentric computes the diameter with a bit-parallel
// multi-source BFS over every vertex — the vertex-centric scheme of
// Pennycuff & Weninger (2015) from the paper's related work. Θ(n·m/64)
// work: small graphs only.
func DiameterVertexCentric(g *Graph, opt BaselineOptions) BaselineResult {
	return baseline.VertexCentric(g, opt)
}

// DiameterFloydWarshall computes the diameter via blocked Floyd–Warshall
// APSP (the CPU analog of the GPU implementation in the paper's related
// work). Θ(n³) time, Θ(n²) memory: small graphs only; larger inputs are
// refused with TimedOut set.
func DiameterFloydWarshall(g *Graph, opt BaselineOptions) BaselineResult {
	return baseline.FloydWarshall(g, opt)
}

// EstimateDiameter returns the Roditty–Vassilevska Williams sampling
// estimate: a certified lower bound that is at least ⌊2D/3⌋ with high
// probability, using about 2√n BFS traversals. sampleSize ≤ 0 selects ⌈√n⌉.
func EstimateDiameter(g *Graph, sampleSize int, seed uint64) int32 {
	return baseline.RodittyWilliams(g, sampleSize, seed, baseline.Options{}).Estimate
}

// NetworkInfo bundles the eccentricity distribution of a graph: diameter,
// radius, center, periphery, and per-vertex eccentricities.
type NetworkInfo = ecc.Info

// AnalyzeNetwork computes NetworkInfo with the Takes–Kosters bounded
// all-eccentricities algorithm — typically a small fraction of n BFS
// traversals instead of the brute-force n. Cancellable callers use
// AnalyzeNetworkCtx.
func AnalyzeNetwork(g *Graph, workers int) NetworkInfo {
	//fdiamlint:ignore ctxflow the facade's whole point is synthesizing the root ctx for AnalyzeNetworkCtx
	return AnalyzeNetworkCtx(context.Background(), g, workers)
}

// AnalyzeNetworkCtx is AnalyzeNetwork under a context: cancelling ctx stops
// the computation at the next BFS boundary, and the aggregates then reflect
// the (sound but inexact) lower bounds established so far — use
// AllEccentricitiesCtx directly when the truncation verdict matters.
func AnalyzeNetworkCtx(ctx context.Context, g *Graph, workers int) NetworkInfo {
	return ecc.FastInfo(ctx, g, workers)
}

// AllEccentricities computes the exact eccentricity of every vertex with
// eccentricity bounding, returning the values and the number of BFS
// traversals spent. Cancellable callers use AllEccentricitiesCtx.
func AllEccentricities(g *Graph, workers int) ([]int32, int64) {
	//fdiamlint:ignore ctxflow the facade's whole point is synthesizing the root ctx for AllEccentricitiesCtx
	eccs, traversals, _ := AllEccentricitiesCtx(context.Background(), g, workers)
	return eccs, traversals
}

// AllEccentricitiesCtx is AllEccentricities under a context, additionally
// reporting whether cancellation truncated the computation (mirroring
// ecc.AllResult.Truncated: unresolved entries then hold valid lower bounds,
// not exact eccentricities).
func AllEccentricitiesCtx(ctx context.Context, g *Graph, workers int) (eccs []int32, traversals int64, truncated bool) {
	res := ecc.BoundedAll(ctx, g, workers)
	return res.Eccs, res.BFSTraversals, res.Truncated
}

// ReorderBFS relabels g in BFS discovery order from the max-degree vertex,
// which improves CSR locality for traversal-heavy workloads. Distances and
// the diameter are invariant under relabeling.
func ReorderBFS(g *Graph) *Graph { return graph.Permute(g, graph.BFSOrder(g)) }

// ReorderByDegree relabels g by descending degree.
func ReorderByDegree(g *Graph) *Graph { return graph.Permute(g, graph.DegreeOrder(g)) }

// ConnectedComponents labels the connected components of g.
func ConnectedComponents(g *Graph) *graph.Components { return graph.ConnectedComponents(g) }

// LargestComponent extracts the largest connected component (new ids) and
// the mapping back to original ids.
func LargestComponent(g *Graph) (*Graph, []Vertex) { return graph.LargestComponent(g) }

// GraphStats summarizes structural properties (Table 1's columns).
type GraphStats = graph.Stats

// ComputeGraphStats gathers GraphStats in O(n+m).
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

//
// Generators — deterministic synthetic graphs (see internal/gen for the
// full set; these cover the topology classes of the paper's inputs).
//

// NewGrid2D returns the w×h 4-neighbor grid.
func NewGrid2D(w, h int) *Graph { return gen.Grid2D(w, h) }

// NewTriangularGrid returns the w×h triangulated grid (avg degree ≈ 6).
func NewTriangularGrid(w, h int) *Graph { return gen.TriangularGrid(w, h) }

// NewPath returns the path graph on n vertices.
func NewPath(n int) *Graph { return gen.Path(n) }

// NewCycle returns the cycle graph on n vertices.
func NewCycle(n int) *Graph { return gen.Cycle(n) }

// NewRMAT returns a recursive-matrix power-law graph with 2^scale vertices
// and about edgeFactor·2^scale edges.
func NewRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, gen.DefaultRMAT, seed)
}

// NewKronecker returns a Graph500-style Kronecker graph.
func NewKronecker(scale, edgeFactor int, seed uint64) *Graph {
	return gen.Kronecker(scale, edgeFactor, seed)
}

// NewBarabasiAlbert returns a preferential-attachment graph (n vertices,
// k edges per new vertex). Note that pure preferential attachment yields
// ultra-small diameters (~log n); real social/web networks — and the
// paper's inputs — have larger diameters from their sparse periphery, which
// NewSocialNetwork models.
func NewBarabasiAlbert(n, k int, seed uint64) *Graph { return gen.BarabasiAlbert(n, k, seed) }

// NewSocialNetwork returns a power-law graph with the core–periphery
// structure of real social/web networks: a preferential-attachment core
// plus sparse tree "whiskers" of the given depth, which set the diameter to
// roughly 2·whiskerDepth + core diameter. whiskerFrac is the fraction of
// vertices in the periphery.
func NewSocialNetwork(n, k int, whiskerFrac float64, whiskerDepth int, seed uint64) *Graph {
	return gen.CoreWhiskers(n, k, whiskerFrac, whiskerDepth, seed)
}

// NewRoadNetwork returns a road-map-like graph: a random spanning tree of
// the w×h grid plus extraFrac of the remaining grid edges.
func NewRoadNetwork(w, h int, extraFrac float64, seed uint64) *Graph {
	return gen.RoadNetwork(w, h, extraFrac, seed)
}

// NewRandomConnected returns a connected random graph (random tree plus
// extra uniform edges).
func NewRandomConnected(n, extra int, seed uint64) *Graph {
	return gen.RandomConnected(n, extra, seed)
}

//
// I/O — edge list, DIMACS, Matrix Market, and binary CSR.
//

// LoadFile reads a graph file. ".metis"/".graph" files are parsed as METIS
// (their header is ambiguous with edge lists, so the extension decides);
// everything else is sniffed (binary CSR, Matrix Market, DIMACS, or plain
// edge list).
func LoadFile(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fdiam: %w", err)
	}
	if hasSuffix(path, ".metis") || hasSuffix(path, ".graph") {
		return graphio.ReadMETIS(bytes.NewReader(data))
	}
	return graphio.ReadAuto(data)
}

// SaveFile writes a graph in the format implied by the extension:
// ".bin" → binary CSR, ".mtx" → Matrix Market, ".gr" → DIMACS,
// ".metis"/".graph" → METIS, anything else → edge list.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fdiam: %w", err)
	}
	defer f.Close()
	switch {
	case hasSuffix(path, ".bin"):
		err = graphio.WriteBinary(f, g)
	case hasSuffix(path, ".mtx"):
		err = graphio.WriteMatrixMarket(f, g)
	case hasSuffix(path, ".gr"):
		err = graphio.WriteDIMACS(f, g)
	case hasSuffix(path, ".metis"), hasSuffix(path, ".graph"):
		err = graphio.WriteMETIS(f, g)
	default:
		err = graphio.WriteEdgeList(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
