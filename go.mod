module fdiam

go 1.24
