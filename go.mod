module fdiam

go 1.22
