// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1–5, Figures 6–9) on the 17 synthetic
// stand-ins, printing measured numbers next to the paper's published
// values. DESIGN.md documents the stand-in for each input; EXPERIMENTS.md
// records a full paper-vs-measured run.
//
// Usage:
//
//	experiments -run all                 # everything, quick scale
//	experiments -run table2 -scale full  # one experiment at full scale
//	experiments -run fig7 -runs 3
//	experiments -workloads rmat16.sym,USA-road-d.NY -run table4
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fdiam/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "experiment: table1..table5, fig6..fig9, all; extensions beyond the paper: ext-algos, ext-allecc, ext-diropt, ext; bfs (substrate comparison); ext-msbfs (main-loop batching comparison); ext-obs (telemetry overhead)")
	scaleFlag := fs.String("scale", "quick", "stand-in scale: quick or full")
	runs := fs.Int("runs", 3, "timed repetitions per measurement (median reported; the paper uses 9)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-run timeout (the paper used 2.5h at full dataset scale)")
	workers := fs.Int("workers", 0, "workers for the parallel codes (0 = all CPUs)")
	workloadsFlag := fs.String("workloads", "", "comma-separated workload names (default: all 17)")
	jsonPath := fs.String("json", "", "with -run bfs, ext-msbfs or ext-obs: also write the comparison as JSON to this file")
	traceDir := fs.String("tracedir", "", "write a Chrome trace artifact per (workload, F-Diam code) into this directory during the main sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("tracedir: %w", err)
		}
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown -scale %q", *scaleFlag)
	}
	cfg := bench.Config{Runs: *runs, Timeout: *timeout, Workers: *workers, TraceDir: *traceDir}

	catalog := func() []*bench.Workload {
		all := bench.Catalog(scale)
		if *workloadsFlag == "" {
			return all
		}
		var out []*bench.Workload
		for _, name := range strings.Split(*workloadsFlag, ",") {
			w := bench.Find(all, strings.TrimSpace(name))
			if w == nil {
				fmt.Fprintf(os.Stderr, "warning: unknown workload %q\n", name)
				continue
			}
			out = append(out, w)
		}
		return out
	}

	fmt.Fprintf(out, "F-Diam reproduction experiments (scale=%s, runs=%d, timeout=%s)\n",
		*scaleFlag, *runs, *timeout)
	fmt.Fprintf(out, "paper columns (p:) are the published values at the original dataset sizes;\n")
	fmt.Fprintf(out, "compare shapes (who wins, rough factors), not absolute numbers.\n\n")

	selected := strings.Split(*which, ",")
	want := func(name string) bool {
		for _, s := range selected {
			s = strings.TrimSpace(s)
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}
	ran := false

	if want("table1") {
		ran = true
		bench.Table1(out, catalog(), cfg)
	}
	if want("table2") || want("fig6") {
		ran = true
		fmt.Fprintln(out, "Running the main sweep (Table 2 + Figure 6)...")
		rows := bench.MainSweep(catalog(), cfg, out)
		fmt.Fprintln(out)
		if want("table2") {
			bench.Table2(out, rows)
		}
		if want("fig6") {
			bench.Fig6(out, rows)
		}
	}
	if want("table3") {
		ran = true
		bench.Table3(out, catalog(), cfg)
	}
	if want("table4") {
		ran = true
		bench.Table4(out, catalog(), cfg)
	}
	if want("fig7") {
		ran = true
		bench.Fig7(out, catalog(), cfg)
	}
	if want("fig8") {
		ran = true
		bench.Fig8(out, catalog(), cfg)
	}
	if want("table5") {
		ran = true
		bench.Table5(out, catalog(), cfg)
	}
	if want("fig9") {
		ran = true
		bench.Fig9(out, catalog(), cfg)
	}
	// Extension experiments are opt-in ("ext" selects all three); "all"
	// covers only the paper's artifacts.
	wantExt := func(name string) bool {
		for _, s := range selected {
			s = strings.TrimSpace(s)
			if s == "ext" || s == name {
				return true
			}
		}
		return false
	}
	if wantExt("ext-algos") {
		ran = true
		bench.TableExtensions(out, catalog(), cfg)
	}
	if wantExt("ext-allecc") {
		ran = true
		bench.TableAllEcc(context.Background(), out, catalog(), cfg)
	}
	if wantExt("ext-diropt") {
		ran = true
		bench.TableDirOpt(out, catalog(), cfg)
	}
	if wantExt("ext-twosweep") {
		ran = true
		bench.TableTwoSweep(out, catalog(), cfg)
	}
	if wantExt("ext-approx") {
		ran = true
		bench.TableApprox(out, catalog(), cfg)
	}
	// "bfs" races the current BFS substrate against the seed revision's and
	// snapshots the result (BENCH_pr1.json). Opt-in: it is a substrate
	// regression check, not one of the paper's artifacts.
	if wantExt("bfs") {
		ran = true
		fmt.Fprintln(out, "Racing legacy vs adaptive BFS substrate...")
		rows, err := bench.BFSComparison(catalog(), cfg, out)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		bench.TableBFS(out, rows)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteBFSComparisonJSON(f, *scaleFlag, cfg, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	// "ext-msbfs" races the legacy main loop (batching disabled) against
	// the MS-BFS-batched one and snapshots the result (BENCH_pr6.json).
	if wantExt("ext-msbfs") {
		ran = true
		fmt.Fprintln(out, "Racing legacy vs MS-BFS-batched main loop...")
		rows, err := bench.MSBFSComparison(catalog(), cfg, out)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		bench.TableMSBFS(out, rows)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteMSBFSComparisonJSON(f, *scaleFlag, cfg, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	// "ext-obs" measures the PR-7 telemetry layer: disarmed vs armed
	// histograms vs full per-request tracing (BENCH_pr7.json).
	if wantExt("ext-obs") {
		ran = true
		fmt.Fprintln(out, "Measuring telemetry overhead (off vs armed vs traced)...")
		rows, err := bench.ObsOverheadComparison(catalog(), cfg, out)
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
		bench.TableObsOverhead(out, rows)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := bench.WriteObsOverheadJSON(f, *scaleFlag, cfg, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonPath)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}
