package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperimentOnSmallWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	var buf bytes.Buffer
	err := run([]string{
		"-run", "table4", "-workloads", "rmat16.sym",
		"-runs", "1", "-timeout", "10s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 4", "rmat16.sym", "Winnow"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMultipleSelections(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real measurements")
	}
	var buf bytes.Buffer
	err := run([]string{
		"-run", "table3,fig8", "-workloads", "rmat16.sym",
		"-runs", "1", "-timeout", "10s",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 3") || !strings.Contains(buf.String(), "Figure 8") {
		t.Errorf("selection broken:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "Table 4") {
		t.Error("unselected experiment ran")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "bogus"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "bogus"}, &buf); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
