package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fdiam/internal/graphio"
	"os"
)

func TestGenerateEveryKind(t *testing.T) {
	dir := t.TempDir()
	kinds := []struct {
		args []string
	}{
		{[]string{"-kind", "grid", "-w", "8", "-h", "8"}},
		{[]string{"-kind", "trigrid", "-w", "6", "-h", "6"}},
		{[]string{"-kind", "path", "-n", "30"}},
		{[]string{"-kind", "cycle", "-n", "30"}},
		{[]string{"-kind", "star", "-n", "30"}},
		{[]string{"-kind", "rmat", "-scale", "7", "-edgefactor", "4"}},
		{[]string{"-kind", "kron", "-scale", "7", "-edgefactor", "4"}},
		{[]string{"-kind", "ba", "-n", "100", "-k", "3"}},
		{[]string{"-kind", "copy", "-n", "100", "-k", "3", "-p", "0.5"}},
		{[]string{"-kind", "er", "-n", "100", "-deg", "4"}},
		{[]string{"-kind", "ws", "-n", "100", "-k", "2", "-p", "0.1"}},
		{[]string{"-kind", "rgg", "-n", "200", "-deg", "6"}},
		{[]string{"-kind", "road", "-w", "10", "-h", "10", "-extra", "0.3"}},
		{[]string{"-kind", "tree", "-n", "50"}},
		{[]string{"-kind", "conn", "-n", "50", "-extra", "0.5"}},
		{[]string{"-kind", "catalog", "-name", "rmat16.sym", "-quick"}},
	}
	for i, k := range kinds {
		out := filepath.Join(dir, k.args[1]+".txt")
		var buf bytes.Buffer
		if err := run(append(k.args, "-o", out), &buf); err != nil {
			t.Fatalf("case %d (%v): %v", i, k.args, err)
		}
		if !strings.Contains(buf.String(), "generated:") {
			t.Errorf("case %d: no summary printed", i)
		}
		data, err := os.ReadFile(out)
		if err != nil || len(data) == 0 {
			t.Errorf("case %d: output file empty (%v)", i, err)
		}
	}
}

func TestGenerateFormats(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{".txt", ".bin", ".mtx", ".gr"} {
		out := filepath.Join(dir, "g"+ext)
		var buf bytes.Buffer
		if err := run([]string{"-kind", "grid", "-w", "5", "-h", "5", "-o", out}, &buf); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graphio.ReadAuto(data)
		if err != nil {
			t.Fatalf("%s: re-read: %v", ext, err)
		}
		if g.NumVertices() != 25 || g.NumEdges() != 40 {
			t.Errorf("%s: round trip lost structure: %v", ext, g)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "grid"}, &buf); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run([]string{"-o", "x.txt"}, &buf); err == nil {
		t.Error("missing -kind accepted")
	}
	if err := run([]string{"-kind", "nope", "-o", "x.txt"}, &buf); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-kind", "catalog", "-name", "nope", "-o", "x.txt"}, &buf); err == nil {
		t.Error("unknown catalog workload accepted")
	}
}
