// Command graphgen generates the synthetic graphs used in this repository
// and writes them to disk in any supported format.
//
// Usage:
//
//	graphgen -kind rmat -scale 16 -edgefactor 8 -seed 1 -o rmat16.txt
//	graphgen -kind grid -w 512 -h 512 -o grid.bin
//	graphgen -kind road -w 300 -h 300 -extra 0.4 -o ny-like.gr
//	graphgen -kind catalog -name rmat16.sym -o standin.bin
//
// Output format follows the file extension: .bin (binary CSR), .mtx
// (Matrix Market), .gr (DIMACS), otherwise edge list.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fdiam/internal/bench"
	"fdiam/internal/gen"
	"fdiam/internal/graph"
	"fdiam/internal/graphio"
	"fdiam/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	kind := fs.String("kind", "", "generator: grid, trigrid, path, cycle, star, rmat, kron, ba, copy, er, ws, rgg, road, tree, conn, catalog")
	outPath := fs.String("o", "", "output file (extension selects the format)")
	n := fs.Int("n", 1000, "vertex count (for n-parameterized generators)")
	w := fs.Int("w", 100, "grid width")
	h := fs.Int("h", 100, "grid height")
	scale := fs.Int("scale", 16, "RMAT/Kronecker scale (n = 2^scale)")
	edgeFactor := fs.Int("edgefactor", 8, "RMAT/Kronecker edges per vertex")
	k := fs.Int("k", 3, "edges per new vertex (ba) / lattice neighbors (ws)")
	extra := fs.Float64("extra", 0.2, "road: extra-edge fraction; conn: extra edges = n*extra")
	p := fs.Float64("p", 0.5, "copy probability (copy) / rewire probability (ws)")
	deg := fs.Float64("deg", 6, "target average degree (rgg)")
	seed := fs.Uint64("seed", 1, "random seed")
	name := fs.String("name", "", "catalog: workload name (e.g. rmat16.sym)")
	quick := fs.Bool("quick", false, "catalog: use quick-scale sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *kind == "" || *outPath == "" {
		return fmt.Errorf("-kind and -o are required (see -h)")
	}

	var g *graph.Graph
	switch *kind {
	case "grid":
		g = gen.Grid2D(*w, *h)
	case "trigrid":
		g = gen.TriangularGrid(*w, *h)
	case "path":
		g = gen.Path(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "star":
		g = gen.Star(*n)
	case "rmat":
		g = gen.RMAT(*scale, *edgeFactor, gen.DefaultRMAT, *seed)
	case "kron":
		g = gen.Kronecker(*scale, *edgeFactor, *seed)
	case "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case "copy":
		g = gen.CopyModel(*n, *k, *p, *seed)
	case "er":
		g = gen.ErdosRenyi(*n, int(float64(*n)**deg/2), *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *p, *seed)
	case "rgg":
		g = gen.RandomGeometric(*n, gen.RadiusForDegree(*n, *deg), *seed)
	case "road":
		g = gen.RoadNetwork(*w, *h, *extra, *seed)
	case "tree":
		g = gen.RandomTree(*n, *seed)
	case "conn":
		g = gen.RandomConnected(*n, int(float64(*n)**extra), *seed)
	case "catalog":
		sc := bench.Full
		if *quick {
			sc = bench.Quick
		}
		wl := bench.Find(bench.Catalog(sc), *name)
		if wl == nil {
			return fmt.Errorf("unknown catalog workload %q", *name)
		}
		g = wl.Graph()
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	s := graph.ComputeStats(g)
	fmt.Fprintf(out, "generated: %s vertices, %s edges, avg degree %.2f, max degree %d, %d components\n",
		stats.FormatCount(int64(s.Vertices)), stats.FormatCount(s.Arcs/2),
		s.AvgDegree, s.MaxDegree, s.Components)

	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case hasSuffix(*outPath, ".bin"):
		err = graphio.WriteBinary(f, g)
	case hasSuffix(*outPath, ".mtx"):
		err = graphio.WriteMatrixMarket(f, g)
	case hasSuffix(*outPath, ".gr"):
		err = graphio.WriteDIMACS(f, g)
	default:
		err = graphio.WriteEdgeList(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
