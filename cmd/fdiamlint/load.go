package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fdiam/internal/analysis"
)

// exportImporter resolves imports from compiler export data files, the way
// the compiler itself consumes dependencies. importMap translates source
// import paths to canonical package paths (identity outside vendoring);
// packageFile locates each canonical path's export data.
func exportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// checkOpts configures one checkPackage run.
type checkOpts struct {
	// analyzers to apply; nil means the full suite. FactsOnly skips them
	// entirely (dependency packages contribute summaries, not findings).
	analyzers []*analysis.Analyzer
	factsOnly bool
	// deps carries the decoded fact sets of the package's dependencies.
	deps analysis.Facts
	// reportUnused enables the stale-suppression check (-unused-ignores).
	reportUnused bool
}

// checkPackage parses and type-checks one package's files, builds its fact
// substrate on top of deps, and (unless factsOnly) runs the analyzer suite
// over it. It returns the surviving diagnostics plus the facts to export
// for the package's dependents.
func checkPackage(fset *token.FileSet, pkgPath string, filenames []string,
	imp types.Importer, opts checkOpts) ([]analysis.Diagnostic, analysis.Facts, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	if opts.factsOnly {
		sums := analysis.BuildSummaries(fset, files, pkg, info, opts.deps)
		return nil, sums.Export(), nil
	}
	analyzers := opts.analyzers
	if analyzers == nil {
		analyzers = analysis.All()
	}
	res, err := analysis.RunSuite(analyzers, fset, files, pkg, info, analysis.SuiteOptions{
		Deps:         opts.deps,
		ReportUnused: opts.reportUnused,
	})
	return res.Diagnostics, res.Facts, err
}

// printDiagnostics renders diagnostics in the conventional
// file:line:col format, with paths relative to the working directory when
// possible, sorted for deterministic output.
func printDiagnostics(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) {
	wd, _ := os.Getwd()
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s", name, pos.Line, pos.Column, d.Message))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
