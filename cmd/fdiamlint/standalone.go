package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"fdiam/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// standaloneOpts carries the command-line configuration into the
// standalone driver.
type standaloneOpts struct {
	analyzers     []*analysis.Analyzer // nil = full suite
	unusedIgnores bool
}

// standalone loads the packages matched by patterns plus their transitive
// dependencies' export data via the go command, analyzes every matched
// (non-dependency) package, and prints diagnostics. Module dependencies
// that are not themselves targets still get a facts-only pass, so the
// interprocedural analyzers see cross-package summaries exactly as the
// vettool mode's vetx exchange provides them. `go list -deps` streams in
// dependency-first order, so each package's dep facts exist before it is
// reached. Returns the process exit code.
func standalone(patterns []string, opts standaloneOpts) int {
	goArgs := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: go list: %v\n", err)
		return 1
	}

	var pkgs []*listedPackage
	packageFile := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: decoding go list output: %v\n", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			pkgs = append(pkgs, &p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	factsByPath := make(map[string]analysis.Facts)
	exit := 0
	for _, p := range pkgs {
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, f)
		}
		deps := analysis.Facts{}
		for _, dep := range p.Imports {
			deps.Merge(factsByPath[dep])
		}
		diags, facts, err := checkPackage(fset, p.ImportPath, filenames, imp, checkOpts{
			analyzers:    opts.analyzers,
			factsOnly:    p.DepOnly,
			deps:         deps,
			reportUnused: opts.unusedIgnores,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		factsByPath[p.ImportPath] = facts
		if len(diags) > 0 {
			printDiagnostics(os.Stdout, fset, diags)
			exit = 2
		}
	}
	return exit
}
