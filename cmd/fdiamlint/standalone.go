package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// standalone loads the packages matched by patterns plus their transitive
// dependencies' export data via the go command, analyzes every matched
// (non-dependency) package, and prints diagnostics. Returns the process
// exit code.
func standalone(patterns []string) int {
	goArgs := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: go list: %v\n", err)
		return 1
	}

	var targets []*listedPackage
	packageFile := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: decoding go list output: %v\n", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	exit := 0
	for _, p := range targets {
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, f)
		}
		diags, err := checkPackage(fset, p.ImportPath, filenames, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		if len(diags) > 0 {
			printDiagnostics(os.Stdout, fset, diags)
			exit = 2
		}
	}
	return exit
}
