// Command fdiamlint runs the project's custom static analyzers
// (internal/analysis: nakedgo, atomicfield, hotalloc, errdrop) over fdiam
// packages. It speaks two protocols:
//
//	fdiamlint ./...                      # standalone, like a mini multichecker
//	go vet -vettool=$(which fdiamlint) ./...   # cmd/go unit-checking protocol
//
// The standalone mode loads packages through `go list -deps -export`, so
// dependencies are consumed as compiler export data rather than re-parsed
// source; the vettool mode implements the JSON .cfg contract cmd/go uses
// for vet tools (the same contract as x/tools' unitchecker, reimplemented
// here because this build environment has no module network access).
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics reported
// (matching go vet's expectation for its vet tools).
package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"

	"fdiam/internal/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// cmd/go interrogates vet tools for their flag set; the suite
			// is not configurable through vet, so the answer is empty
			// (standalone-mode flags like -only stay out of the protocol).
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage(os.Stdout)
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	// Standalone-mode flags precede the package patterns.
	var opts standaloneOpts
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch arg := args[0]; {
		case arg == "-unused-ignores":
			opts.unusedIgnores = true
		case strings.HasPrefix(arg, "-only="):
			names, err := pickAnalyzers(strings.TrimPrefix(arg, "-only="))
			if err != nil {
				fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
				os.Exit(1)
			}
			opts.analyzers = names
		default:
			fmt.Fprintf(os.Stderr, "fdiamlint: unknown flag %s\n", arg)
			usage(os.Stderr)
			os.Exit(1)
		}
		args = args[1:]
	}
	if len(args) == 0 {
		usage(os.Stderr)
		os.Exit(1)
	}
	if opts.analyzers != nil && opts.unusedIgnores {
		// A partial run cannot tell a stale directive from one whose
		// analyzer was skipped.
		fmt.Fprintf(os.Stderr, "fdiamlint: -unused-ignores requires the full suite (drop -only)\n")
		os.Exit(1)
	}
	os.Exit(standalone(args, opts))
}

// pickAnalyzers resolves a comma-separated -only list against the suite.
func pickAnalyzers(csv string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range analysis.All() {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q in -only", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: fdiamlint [-only=a,b] [-unused-ignores] <packages>   (e.g. fdiamlint ./...)\n")
	fmt.Fprintf(w, "   or: go vet -vettool=$(which fdiamlint) <packages>\n\nflags (standalone mode only):\n")
	fmt.Fprintf(w, "  -only=<names>    run only the named analyzers (comma-separated)\n")
	fmt.Fprintf(w, "  -unused-ignores  also report //fdiamlint:ignore directives that suppress nothing\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nsuppress one finding with a justified directive on the line above:\n")
	fmt.Fprintf(w, "  //fdiamlint:ignore <analyzer> <reason>\n")
}

// printVersion implements the -V=full handshake: cmd/go hashes this line
// into its action cache key, so it must change whenever the tool's
// behavior changes. Hashing the executable itself guarantees that.
func printVersion() {
	h := fnv.New64a()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("fdiamlint version devel-%x\n", h.Sum64())
}
