package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"fdiam/internal/analysis"
)

// vetConfig mirrors the JSON configuration cmd/go hands a vet tool for
// each package unit (the same contract x/tools' unitchecker consumes).
// Fields the suite does not need are still listed so the decoder accepts
// every cfg cmd/go produces.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit described by a cfg file, per the
// `go vet -vettool` protocol: diagnostics go to stderr, the vetx facts
// file must be produced for every unit (dependency or target alike — it
// carries the function summaries the interprocedural analyzers consume
// across package boundaries), and the exit code is 2 iff diagnostics were
// reported.
//
// Standard-library units short-circuit with an empty fact set: their
// bodies are never analyzed (the stdlib tables in facts.go are the ground
// truth for them), which also spares `go vet` a full source typecheck of
// the standard library. Module dependencies (VetxOnly) are parsed and
// summarized but produce no diagnostics.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go marks only a unit's *imports* in Standard, never the unit
	// itself; what identifies a standard-library unit is its empty
	// ModulePath (the stdlib belongs to no module). Both are checked in
	// case either convention shifts.
	if cfg.ModulePath == "" || cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0 {
		if err := writeVetx(cfg.VetxOutput, analysis.Facts{}); err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
			return 1
		}
		return 0
	}

	deps := analysis.Facts{}
	for path, vetxFile := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing dep facts degrade to the stdlib tables
		}
		depFacts, err := analysis.DecodeFacts(payload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: decoding facts of %s: %v\n", path, err)
			return 1
		}
		deps.Merge(depFacts)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	diags, facts, err := checkPackage(fset, cfg.ImportPath, cfg.GoFiles, imp, checkOpts{
		factsOnly: cfg.VetxOnly,
		deps:      deps,
	})
	if err != nil {
		// Facts for an unanalyzable unit are empty rather than absent, so
		// dependent units still load.
		if werr := writeVetx(cfg.VetxOutput, analysis.Facts{}); werr != nil {
			fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", werr)
			return 1
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "fdiamlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiagnostics(os.Stderr, fset, diags)
	return 2
}

// writeVetx serializes facts into the vetx file cmd/go requires from
// every vet tool run.
func writeVetx(path string, facts analysis.Facts) error {
	if path == "" {
		return nil
	}
	payload, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, payload, 0o666)
}
