package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
)

// vetConfig mirrors the JSON configuration cmd/go hands a vet tool for
// each package unit (the same contract x/tools' unitchecker consumes).
// Fields the suite does not need are still listed so the decoder accepts
// every cfg cmd/go produces.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit described by a cfg file, per the
// `go vet -vettool` protocol: diagnostics go to stderr, the vetx facts
// file must be produced either way (the suite exchanges no facts, so it is
// a marker file), and the exit code is 2 iff diagnostics were reported.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(os.Stderr, "fdiamlint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	diags, err := checkPackage(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "fdiamlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiagnostics(os.Stderr, fset, diags)
	return 2
}

// writeVetx produces the (empty) facts file cmd/go requires from every
// vet tool run, dependency or target alike.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte("fdiamlint: no facts\n"), 0o666)
}
