package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"fdiam/internal/gen"
	"fdiam/internal/graphio"
)

// syncBuffer lets the test poll daemon output while run() writes it from
// another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on http://(\S+)`)

// startDaemon runs the daemon on a free port and returns its base URL and
// a shutdown func that triggers the drain path and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { errc <- run(ctx, args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	var url string
	for url == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			url = "http://" + m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(time.Millisecond)
	}
	return url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func TestDaemonServesAndShutsDownCleanly(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "grid.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteEdgeList(f, gen.Grid2D(6, 6)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	url, shutdown := startDaemon(t, "-graphs", dir, "-workers", "1")

	// Upload solve.
	var buf bytes.Buffer
	if err := graphio.WriteEdgeList(&buf, gen.Path(100)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/diameter", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Diameter       int32 `json:"diameter"`
		ResultCacheHit bool  `json:"result_cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Diameter != 99 {
		t.Fatalf("upload solve: status %d, %+v", resp.StatusCode, got)
	}

	// Pre-staged path solve.
	resp, err = http.Post(url+"/diameter?path=grid.txt", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Diameter != 10 {
		t.Fatalf("path solve: status %d, %+v", resp.StatusCode, got)
	}

	// Introspection is mounted.
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Signal-style shutdown: run() must drain and return nil.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	ctx := context.Background()
	out := &syncBuffer{}
	if err := run(ctx, []string{"stray-arg"}, out); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run(ctx, []string{"-graphs", "/nonexistent-dir-fdiamd-test"}, out); err == nil {
		t.Fatal("missing graph dir accepted")
	}
	if err := run(ctx, []string{"-addr", "256.256.256.256:99999"}, out); err == nil {
		t.Fatal("unusable listen address accepted")
	}
}

// TestDaemonFaultsList pins the per-binary fault inventory: fdiamd links
// the serve and cluster packages, so their points must appear alongside
// the solver/I-O points shared with fdiam.
func TestDaemonFaultsList(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-faults", "list"}, out); err != nil {
		t.Fatalf("-faults=list: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"cluster.peer_dial",
		"cluster.peer_timeout",
		"cluster.forward_5xx",
		"serve.webhook_fail",
		"graphio.short_read",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-faults=list output missing %s:\n%s", want, got)
		}
	}
}
