// Command fdiamd serves exact diameter computation over HTTP.
//
// Usage:
//
//	fdiamd [flags]
//
// Endpoints:
//
//	POST /diameter          solve the graph file in the request body
//	POST /diameter?path=f   solve a pre-staged file from the -graphs dir
//	POST /jobs              submit an async solve; responds 202 with a job id
//	GET  /jobs/{id}         poll an async job (id = the graph's SHA-256)
//	GET  /cluster           ring membership + peer health (?key= owner lookup)
//	GET  /healthz           liveness (503 while draining)
//	GET  /metrics           Prometheus text format (fdiamd_* + solver)
//	GET  /progress          live snapshot of the current run
//	GET  /progress/stream   SSE feed of bound-corridor + progress events
//	GET  /debug/pprof/      standard profiling tree
//
// Anytime answers: POST /diameter?epsilon=E stops the solve once the
// bound corridor satisfies ub − lb ≤ E and responds with the corridor
// ({"diameter": lb, "upper": ub, "gap": ub−lb, "approximate": true}); the
// true diameter always lies inside it. POST /diameter?mode=approx[&sweeps=S]
// skips the main loop entirely and answers from S budgeted double sweeps
// (default 4, max 64) — fast, sound, and deterministic for a given graph.
// Approximate results are cached under parameter-qualified keys so they
// never satisfy a later exact request, while a cached exact answer
// satisfies any tolerance.
//
// POST /diameter?stream=bounds streams the solve as Server-Sent Events:
// one `bound` event per corridor tightening ({lb, ub, witness_a,
// witness_b, elapsed_ns}) and a terminal `result` event carrying the
// normal response JSON. POST /diameter?trace=1 embeds a Chrome trace of
// the solve in the response. Every response echoes X-Request-ID (accepted
// from the client or minted), and with -log-format/-log-level set the
// daemon emits structured access and solver logs joinable on request_id.
//
// The `timeout` query parameter (a Go duration, e.g. ?timeout=30s) bounds
// one solve; a timed-out solve responds 200 with "timed_out": true and the
// best lower bound found. SIGINT/SIGTERM drain gracefully: in-flight
// solves are cancelled at their next BFS level boundary and their partial
// bounds are still written before the process exits.
//
// With -checkpoint-dir set, every solve periodically snapshots its state
// there (one subdirectory per graph, content-addressed); after a crash or
// kill -9 the next boot resumes the orphaned solves from their snapshots and
// publishes the results to the caches, losing at most one checkpoint
// interval of work. FDIAM_FAULTS (or -faults) arms deterministic fault
// injection for chaos testing; -faults=list prints every known injection
// point and exits.
//
// Cluster mode: -peers gives the static membership (comma-separated base
// URLs, -self naming this node's own entry). Each graph content hash has
// one owning peer on a consistent-hash ring; a request arriving elsewhere
// is forwarded to the owner, and an unreachable owner degrades to a local
// solve rather than an error. Async jobs (POST /jobs) survive process
// death when -checkpoint-dir is set: the next boot finishes them and
// GET /jobs/{id} finds the result. -tenant-header arms per-tenant
// admission quotas (token bucket of -tenant-rate/-tenant-burst per header
// value) answering 429 + Retry-After when a tenant overruns.
//
// Examples:
//
//	fdiamd -addr :8080
//	fdiamd -addr :8080 -graphs /data/graphs -max-concurrent 4 -max-timeout 2.5h
//	fdiamd -addr :8080 -checkpoint-dir /var/lib/fdiamd/ckpt -checkpoint-interval 30s
//	fdiamd -addr :8081 -self http://10.0.0.1:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081,http://10.0.0.3:8081
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fdiam/internal/cluster"
	"fdiam/internal/fault"
	"fdiam/internal/obs"
	"fdiam/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fdiamd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it serves until ctx is cancelled, then
// drains and returns.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fdiamd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	graphs := fs.String("graphs", "", "directory of pre-staged graph files for ?path= requests (empty = uploads only)")
	workers := fs.Int("workers", 0, "parallel workers per solve (0 = all CPUs)")
	maxConcurrent := fs.Int("max-concurrent", 2, "solves running simultaneously")
	maxQueue := fs.Int("max-queue", 8, "solves waiting beyond the running ones before 429")
	cacheBytes := fs.Int64("graph-cache-bytes", 1<<30, "parsed-graph LRU budget in bytes")
	resultCache := fs.Int("result-cache", 4096, "finished-result LRU entries")
	defTimeout := fs.Duration("default-timeout", 0, "timeout applied when a request sends none (0 = unbounded)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on per-request timeouts (0 = no cap)")
	maxUpload := fs.Int64("max-upload-bytes", 1<<30, "request body size limit")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	ckDir := fs.String("checkpoint-dir", "", "persist crash-safe snapshots of in-flight solves here and resume them on boot (empty = off)")
	ckEvery := fs.Duration("checkpoint-interval", 10*time.Second, "snapshot cadence for checkpointed solves")
	peers := fs.String("peers", "", "comma-separated base URLs of all cluster nodes, this one included (empty = standalone)")
	self := fs.String("self", "", "this node's own base URL as it appears in -peers (required with -peers)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second, "peer health-probe cadence in cluster mode")
	tenantHeader := fs.String("tenant-header", "", "request header identifying a tenant for admission quotas (empty = quotas off)")
	tenantRate := fs.Float64("tenant-rate", 1, "per-tenant sustained admission rate, requests/second")
	tenantBurst := fs.Int("tenant-burst", 5, "per-tenant burst allowance above the sustained rate")
	faults := fs.String("faults", "", "fault-injection spec for chaos testing (overrides "+fault.EnvVar+"; see internal/fault), or \"list\" to print known points and exit")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error (debug includes per-solve stage and bound events)")
	runtimeMetrics := fs.Duration("runtime-metrics", 10*time.Second, "runtime self-telemetry sampling interval (heap, GC, goroutines; 0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (fdiamd takes only flags, see -h)", fs.Args())
	}
	if *faults == "list" {
		for _, name := range fault.List() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *faults != "" {
		if err := fault.Configure(*faults); err != nil {
			return err
		}
	} else if err := fault.ConfigureFromEnv(); err != nil {
		return err
	}
	if active := fault.Active(); len(active) != 0 {
		fmt.Fprintf(out, "fdiamd: fault injection armed: %v\n", active)
	}
	lg, err := obs.NewLogger(out, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *runtimeMetrics > 0 {
		stopSampler := obs.StartRuntimeSampler(obs.Default(), *runtimeMetrics)
		defer stopSampler()
	}

	var cl *cluster.Cluster
	if *peers != "" {
		cl, err = cluster.New(cluster.Config{
			Self:          *self,
			Peers:         strings.Split(*peers, ","),
			ProbeInterval: *probeInterval,
			Logger:        lg,
		})
		if err != nil {
			return err
		}
		cl.StartProbes(ctx)
		fmt.Fprintf(out, "fdiamd: cluster mode, self=%s peers=%v\n", cl.Self(), cl.Peers())
	}

	api, err := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		GraphCacheBytes: *cacheBytes,
		ResultCacheSize: *resultCache,
		DefaultTimeout:  *defTimeout,
		MaxTimeout:      *maxTimeout,
		MaxUploadBytes:  *maxUpload,
		GraphDir:        *graphs,
		CheckpointDir:   *ckDir,
		CheckpointEvery: *ckEvery,
		Workers:         *workers,
		Cluster:         cl,
		TenantHeader:    *tenantHeader,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
		Logger:          lg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: api}
	errc := make(chan error, 1)
	// Serve returns http.ErrServerClosed after the Shutdown below; any
	// other error (listener died) aborts the daemon.
	//fdiamlint:ignore nakedgo http.Server accept-loop goroutine, joined via errc on shutdown
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(out, "fdiamd: listening on http://%s\n", ln.Addr())
	if *ckDir != "" {
		// Boot-time recovery runs behind the listener so a daemon with a
		// backlog of crashed solves still answers health checks instantly.
		//fdiamlint:ignore nakedgo boot-time recovery, bounded by the solve slot pool and baseCtx
		go func() {
			if n := api.ResumeOrphans(context.Background()); n > 0 {
				fmt.Fprintf(out, "fdiamd: finished %d orphaned solve(s) from %s\n", n, *ckDir)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "fdiamd: draining (cancelling in-flight solves, up to %s)\n", *drain)
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: api.Shutdown cancels the solver contexts so the
	// handlers finish writing partial results, after which the HTTP
	// shutdown has no long-running connections left to wait for.
	if err := api.Shutdown(sdCtx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errc // reap the accept loop's ErrServerClosed
	fmt.Fprintln(out, "fdiamd: stopped")
	return nil
}
