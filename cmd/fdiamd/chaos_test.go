package main

// Chaos test: kill -9 a real fdiamd mid-solve and prove the restarted
// daemon resumes the orphaned solve from its checkpoint snapshot and reaches
// the identical diameter. This is the end-to-end crash-safety contract; the
// "at most one checkpoint interval redone" half is pinned deterministically
// by the solver-level tests in internal/core.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"fdiam/internal/checkpoint"
	"fdiam/internal/gen"
	"fdiam/internal/graphio"
)

// daemonProc is one spawned fdiamd process.
type daemonProc struct {
	cmd *exec.Cmd
	out *syncBuffer
	url string
}

func spawnDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	p := &daemonProc{out: &syncBuffer{}}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	deadline := time.Now().Add(20 * time.Second)
	for p.url == "" {
		if m := listenLine.FindStringSubmatch(p.out.String()); m != nil {
			p.url = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spawned daemon never listened:\n%s", p.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p
}

func (p *daemonProc) kill9() error {
	if err := p.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no cleanup
		return err
	}
	return p.cmd.Wait() // expected to report the kill
}

var resumesMetric = regexp.MustCompile(`(?m)^fdiamd_resumes_total\s+(\d+)$`)

func readResumesMetric(url string) int {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return -1
	}
	m := resumesMetric.FindSubmatch(body)
	if m == nil {
		return -1
	}
	n, _ := strconv.Atoi(string(m[1]))
	return n
}

func TestChaosKillDashNineAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kill -9s a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "fdiamd-chaos")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Skipf("cannot build daemon binary: %v\n%s", err, out)
	}

	// Grid diameters are known analytically ((w-1)+(h-1)), so no reference
	// solve is needed. The ladder retries with longer solves until the kill
	// lands between the first snapshot and completion.
	for _, side := range []int{300, 500, 800} {
		g := gen.Grid2D(side, side)
		wantDiameter := int32(2 * (side - 1))
		var buf bytes.Buffer
		if err := graphio.WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		body := buf.Bytes()
		sum := sha256.Sum256(body)
		key := hex.EncodeToString(sum[:])
		ckDir := t.TempDir()

		if diameter, landed := chaosAttempt(t, bin, ckDir, key, body); landed {
			if diameter != wantDiameter {
				t.Fatalf("resumed daemon returned diameter %d, want %d", diameter, wantDiameter)
			}
			return
		}
		t.Logf("grid %dx%d solved before a snapshot landed; retrying larger", side, side)
	}
	t.Skip("could not land a kill between first snapshot and completion on this machine")
}

// chaosAttempt runs one crash/restart cycle. Returns landed=false when the
// solve finished before a snapshot existed (retry with a longer solve).
func chaosAttempt(t *testing.T, bin, ckDir, key string, body []byte) (int32, bool) {
	t.Helper()
	p1 := spawnDaemon(t, bin,
		"-checkpoint-dir", ckDir, "-checkpoint-interval", "25ms", "-workers", "1")

	solveDone := make(chan struct{})
	go func() {
		defer close(solveDone)
		resp, err := http.Post(p1.url+"/diameter", "application/octet-stream", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close() // completed before the kill: attempt failed
		}
	}()

	// Wait for the first snapshot of this graph to hit the disk.
	snap := filepath.Join(ckDir, key, checkpoint.FileName)
	landed := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(snap); err == nil {
			landed = true
			break
		}
		select {
		case <-solveDone:
			// Finished without a surviving snapshot: solve too fast.
			_ = p1.cmd.Process.Kill()
			_ = p1.cmd.Wait()
			return 0, false
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !landed {
		t.Fatalf("no snapshot appeared within 30s:\n%s", p1.out.String())
	}
	if err := p1.kill9(); err != nil && p1.cmd.ProcessState == nil {
		t.Fatalf("kill -9: %v", err)
	}
	// The murdered daemon must leave its crash artifacts: the snapshot and
	// the serialized graph beside it.
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot vanished after kill -9: %v", err)
	}
	if _, err := os.Stat(filepath.Join(ckDir, key, "graph")); err != nil {
		t.Fatalf("graph copy missing after kill -9: %v", err)
	}

	// Restart over the same checkpoint dir: boot recovery must resume the
	// orphan (fdiamd_resumes_total counts only snapshot-based resumes) and
	// publish its result to the caches.
	p2 := spawnDaemon(t, bin,
		"-checkpoint-dir", ckDir, "-checkpoint-interval", "25ms", "-workers", "1")
	deadline = time.Now().Add(120 * time.Second)
	for readResumesMetric(p2.url) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted daemon never resumed the orphan:\n%s", p2.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Post(p2.url+"/diameter", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post-resume request: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Diameter       int32 `json:"diameter"`
		ResultCacheHit bool  `json:"result_cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-resume request: status %d", resp.StatusCode)
	}
	if !out.ResultCacheHit {
		t.Fatalf("resumed result not served from cache: %+v", out)
	}
	// Clean shutdown of the survivor.
	if err := p2.cmd.Process.Signal(os.Interrupt); err == nil {
		done := make(chan error, 1)
		go func() { done <- p2.cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			_ = p2.cmd.Process.Kill()
			<-done
		}
	}
	return out.Diameter, true
}
