// Command fdiam computes the exact diameter of a graph file with the
// F-Diam algorithm or one of the baseline algorithms.
//
// Usage:
//
//	fdiam [flags] <graph-file>
//
// The input format is auto-detected: fdiam binary CSR, Matrix Market
// (SuiteSparse), DIMACS sp (USA-road-d), or a plain whitespace edge list
// (SNAP). Disconnected inputs are flagged and the largest eccentricity over
// all components is reported, matching the paper's convention.
//
// Examples:
//
//	fdiam road.gr
//	fdiam -algo ifub -workers 1 -timeout 2.5h web.txt
//	fdiam -stats -v snap-edges.txt
//	fdiam -trace run.json -json web.txt
//	fdiam -http :6060 -progress 2s road.gr
//	fdiam -checkpoint-dir ./ckpt -checkpoint-interval 30s huge.gr
//	fdiam -epsilon 2 huge.gr
//	fdiam -approx 8 huge.gr
//
// With -checkpoint-dir, the solver snapshots its state there periodically;
// re-running the same command after an interruption (Ctrl-C, crash, kill -9)
// resumes from the snapshot instead of starting over, redoing at most one
// checkpoint interval of work.
//
// -epsilon and -approx trade exactness for time, but never soundness: the
// reported corridor [diameter, upper] always contains the true diameter.
// -epsilon N stops the solve once upper − lower ≤ N (an ε-stopped
// checkpointed run records N in its snapshot, so a plain resume keeps
// honoring it; resume with -epsilon -1 to force an exact finish). -approx K
// skips the main loop entirely and builds the corridor from K double
// sweeps.
//
// Exit codes distinguish how a run ended, so scripts and batch drivers can
// branch without parsing output:
//
//	0  the solve finished (exact or approximate as requested)
//	1  usage, input or I/O error — nothing was solved
//	3  the solve was cancelled (Ctrl-C); the best lower bound was reported
//	4  the solve hit -timeout; the best lower bound was reported
//
// -faults=list prints every registered fault-injection point and exits;
// any other value arms the spec (overriding FDIAM_FAULTS) for chaos runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"fdiam/internal/baseline"
	"fdiam/internal/checkpoint"
	"fdiam/internal/core"
	"fdiam/internal/fault"
	"fdiam/internal/graph"
	"fdiam/internal/graphio"
	"fdiam/internal/obs"
	"fdiam/internal/stats"
)

// Exit codes (documented in the package comment above).
const (
	exitOK        = 0
	exitError     = 1
	exitCancelled = 3
	exitTimedOut  = 4
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdiam:", err)
	}
	os.Exit(code)
}

// run executes one CLI invocation and returns the process exit code. A
// non-nil error always pairs with exitError; cancelled and timed-out
// solves return their distinct codes with a nil error because the partial
// result was still reported.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("fdiam", flag.ContinueOnError)
	algo := fs.String("algo", "fdiam", "algorithm: fdiam, ifub, bounding, korf, naive")
	workers := fs.Int("workers", 0, "parallel workers inside each BFS (0 = all CPUs, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none); the paper used 2.5h")
	showStats := fs.Bool("stats", false, "print F-Diam stage statistics (BFS counts, removal %, timings)")
	noWinnow := fs.Bool("no-winnow", false, "disable Winnow (ablation)")
	noElim := fs.Bool("no-eliminate", false, "disable Eliminate (ablation)")
	noChain := fs.Bool("no-chain", false, "disable Chain Processing (ablation)")
	noU := fs.Bool("no-u", false, "start from vertex 0 instead of the max-degree vertex (ablation)")
	noDirOpt := fs.Bool("no-diropt", false, "force plain top-down BFS (disable the bottom-up switch)")
	alpha := fs.Int("alpha", 0, "direction-heuristic alpha: go bottom-up when modeled bottom-up cost < alpha x top-down cost (0 = default 2)")
	beta := fs.Int("beta", 0, "direction-heuristic beta: return top-down when frontier < n/beta vertices (0 = default 8)")
	noBatch := fs.Bool("no-batch", false, "disable MS-BFS batching of the main loop (legacy one-BFS-per-vertex behavior)")
	batchForce := fs.Bool("batch-force", false, "batch every main-loop evaluation, bypassing the cost model")
	batchMin := fs.Int("batch-min", 0, "cost model: minimum remaining active vertices before batching (0 = default 16)")
	batchMaxPrune := fs.Float64("batch-maxprune", 0, "cost model: batch only while the recent removals-per-BFS average is at most this (0 = default 16)")
	batchRows := fs.Bool("batch-rows", false, "request per-source distance rows from each batch and eliminate by row scan")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := fs.Bool("v", false, "print graph statistics before solving")
	jsonOut := fs.Bool("json", false, "print the result as a single JSON object")
	traceFile := fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (chrome://tracing, Perfetto); fdiam only")
	eventsFile := fs.String("events", "", "write an NDJSON structured event log of the run to this file; fdiam only")
	httpAddr := fs.String("http", "", "serve /metrics, /progress and /debug/pprof on this address (e.g. :6060)")
	progress := fs.Duration("progress", 0, "log a one-line progress status to stderr at this interval; fdiam only")
	ckDir := fs.String("checkpoint-dir", "", "write crash-safe snapshots here and auto-resume from an existing one; fdiam only")
	ckEvery := fs.Duration("checkpoint-interval", 0, "snapshot cadence (0 = solver default 10s); fdiam only")
	epsilon := fs.Int("epsilon", 0, "stop once upper − lower ≤ this tolerance and report the corridor (0 = exact, -1 = force exact even when resuming an ε snapshot); fdiam only")
	approxSweeps := fs.Int("approx", 0, "approximate: spend this many double sweeps instead of the exact solve and report the corridor; fdiam only")
	logFormat := fs.String("log-format", "", "emit structured solver logs to stderr: text or json (empty = off)")
	logLevel := fs.String("log-level", "info", "structured log level: debug, info, warn or error (debug includes stage and bound events)")
	faults := fs.String("faults", "", "fault-injection spec for chaos testing (overrides "+fault.EnvVar+"; see internal/fault), or \"list\" to print known points and exit")
	if err := fs.Parse(args); err != nil {
		return exitError, err
	}
	if *faults == "list" {
		// The inventory covers the points linked into this binary; fdiamd
		// registers additional serve/cluster points.
		for _, name := range fault.List() {
			fmt.Fprintln(out, name)
		}
		return exitOK, nil
	}
	if fs.NArg() != 1 {
		return exitError, fmt.Errorf("usage: fdiam [flags] <graph-file> (see -h)")
	}
	if *algo != "fdiam" && (*traceFile != "" || *eventsFile != "" || *progress != 0 || *ckDir != "" ||
		*epsilon != 0 || *approxSweeps != 0) {
		return exitError, fmt.Errorf("-trace, -events, -progress, -checkpoint-dir, -epsilon and -approx require -algo fdiam")
	}
	if *epsilon < -1 {
		return exitError, fmt.Errorf("-epsilon %d: use a tolerance ≥ 0, or -1 to force exactness on resume", *epsilon)
	}
	if *approxSweeps < 0 {
		return exitError, fmt.Errorf("-approx %d: the sweep budget cannot be negative", *approxSweeps)
	}
	if *faults != "" {
		if err := fault.Configure(*faults); err != nil {
			return exitError, err
		}
	} else if err := fault.ConfigureFromEnv(); err != nil {
		return exitError, err
	}

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, nil)
		if err != nil {
			return exitError, fmt.Errorf("http: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "fdiam: serving /metrics, /progress, /debug/pprof on http://%s\n", srv.Addr())
		// A scrapeable process arms the histograms and the runtime
		// sampler; without -http they stay disarmed so the solver's
		// zero-overhead default holds.
		obs.Default().ArmHistograms(true)
		stopSampler := obs.StartRuntimeSampler(obs.Default(), 10*time.Second)
		defer stopSampler()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return exitError, fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return exitError, fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdiam: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fdiam: memprofile:", err)
			}
		}()
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return exitError, err
	}
	g, err := graphio.ReadAuto(data)
	if err != nil {
		return exitError, err
	}
	if *verbose {
		s := graph.ComputeStats(g)
		fmt.Fprintf(out, "graph: %s vertices, %s arcs, avg degree %.1f, max degree %s, %d components\n",
			stats.FormatCount(int64(s.Vertices)), stats.FormatCount(s.Arcs),
			s.AvgDegree, stats.FormatCount(int64(s.MaxDegree)), s.Components)
	}

	// Ctrl-C cancels the solver at the next BFS level boundary and reports
	// the best lower bound found so far instead of killing the process; a
	// second interrupt falls back to the default handler and kills it.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *logFormat != "" {
		lg, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
		if err != nil {
			return exitError, err
		}
		ctx = obs.ContextWithLogger(ctx, lg)
	}

	start := time.Now()
	switch *algo {
	case "fdiam":
		// An observability run is attached when any event sink or the
		// live endpoints need it; nil keeps the solver's zero-overhead
		// path.
		var trace *obs.Run
		if *traceFile != "" || *eventsFile != "" || *httpAddr != "" || *progress != 0 {
			var cfg obs.Config
			if *traceFile != "" {
				f, err := os.Create(*traceFile)
				if err != nil {
					return exitError, fmt.Errorf("trace: %w", err)
				}
				defer f.Close()
				cfg.ChromeTrace = f
			}
			if *eventsFile != "" {
				f, err := os.Create(*eventsFile)
				if err != nil {
					return exitError, fmt.Errorf("events: %w", err)
				}
				defer f.Close()
				cfg.Events = f
			}
			trace = obs.NewRun(cfg)
			if *progress != 0 {
				stop := trace.LogProgress(os.Stderr, *progress)
				defer stop()
			}
		}
		ck := core.CheckpointOptions{Dir: *ckDir, Every: *ckEvery}
		if *ckDir != "" {
			// Auto-resume: a snapshot in the checkpoint dir is what a
			// previous interrupted run of (presumably) this graph left
			// behind; a mismatched graph is rejected by validation and the
			// solve falls back to fresh.
			if snap := filepath.Join(*ckDir, checkpoint.FileName); fileExists(snap) {
				ck.ResumeFrom = snap
			}
		}
		res := core.DiameterCtx(ctx, g, core.Options{
			Workers:             *workers,
			Timeout:             *timeout,
			DisableWinnow:       *noWinnow,
			DisableEliminate:    *noElim,
			DisableChain:        *noChain,
			StartAtVertexZero:   *noU,
			DisableDirectionOpt: *noDirOpt,
			BFSAlpha:            *alpha,
			BFSBeta:             *beta,
			Batch: core.BatchOptions{
				Disable:   *noBatch,
				Force:     *batchForce,
				MinActive: *batchMin,
				MaxPrune:  *batchMaxPrune,
				Rows:      *batchRows,
			},
			Checkpoint: ck,
			Trace:      trace,
			Epsilon:    int32(*epsilon),
			Approx:     core.ApproxOptions{Sweeps: *approxSweeps},
		})
		if res.ResumeError != "" {
			fmt.Fprintf(os.Stderr, "fdiam: checkpoint resume failed (%s); solved from scratch\n", res.ResumeError)
		} else if res.Resumed {
			fmt.Fprintln(os.Stderr, "fdiam: resumed from checkpoint")
		}
		elapsed := time.Since(start)
		if trace != nil {
			if err := trace.Finish(); err != nil {
				return exitError, fmt.Errorf("trace: %w", err)
			}
		}
		if *jsonOut {
			if err := writeJSON(out, *algo, fs.Arg(0), res.Diameter, res.Upper, res.Infinite,
				res.TimedOut, res.Cancelled, res.Approximate, res.WitnessA, res.WitnessB, elapsed, &res.Stats, 0); err != nil {
				return exitError, err
			}
			return solveExitCode(res.TimedOut, res.Cancelled), nil
		}
		report(out, res.Diameter, res.Upper, res.Infinite, res.TimedOut, res.Cancelled, res.Approximate, elapsed)
		if *showStats {
			fmt.Fprintf(out, "stats: %s\n", res.Stats.String())
		}
		return solveExitCode(res.TimedOut, res.Cancelled), nil
	case "ifub", "bounding", "korf", "naive":
		opt := baseline.Options{Workers: *workers, Timeout: *timeout}
		var res baseline.Result
		switch *algo {
		case "ifub":
			res = baseline.IFUB(g, opt)
		case "bounding":
			res = baseline.Bounding(g, opt)
		case "korf":
			res = baseline.Korf(g, opt)
		case "naive":
			res = baseline.Naive(g, opt)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			if err := writeJSON(out, *algo, fs.Arg(0), res.Diameter, res.Diameter, res.Infinite,
				res.TimedOut, false, false, graph.NoVertex, graph.NoVertex, elapsed, nil, res.BFSTraversals); err != nil {
				return exitError, err
			}
			return solveExitCode(res.TimedOut, false), nil
		}
		report(out, res.Diameter, res.Diameter, res.Infinite, res.TimedOut, false, false, elapsed)
		if *showStats {
			fmt.Fprintf(out, "stats: bfs-traversals=%d\n", res.BFSTraversals)
		}
		return solveExitCode(res.TimedOut, false), nil
	default:
		return exitError, fmt.Errorf("unknown -algo %q", *algo)
	}
}

// solveExitCode maps how the solve ended onto the CLI's documented exit
// codes. Timeout wins over cancellation when both are set: the deadline
// firing is what cancelled the run.
func solveExitCode(timedOut, cancelled bool) int {
	switch {
	case timedOut:
		return exitTimedOut
	case cancelled:
		return exitCancelled
	default:
		return exitOK
	}
}

// jsonResult is the -json output schema. Witnesses use -1 for "none"
// (graphs with no edges, or baseline algorithms that do not track a pair)
// so consumers need not know the NoVertex sentinel.
type jsonResult struct {
	Algorithm string `json:"algorithm"`
	Graph     string `json:"graph"`
	Diameter  int32  `json:"diameter"`
	// Upper is the best proven upper bound (== diameter unless the run
	// stopped early via -epsilon/-approx, in which case approximate is set
	// and the true diameter lies in [diameter, upper]).
	Upper         int32       `json:"upper"`
	Gap           int32       `json:"gap"`
	Approximate   bool        `json:"approximate"`
	Infinite      bool        `json:"infinite"`
	TimedOut      bool        `json:"timed_out"`
	Cancelled     bool        `json:"cancelled"`
	WitnessA      int64       `json:"witness_a"`
	WitnessB      int64       `json:"witness_b"`
	ElapsedNS     int64       `json:"elapsed_ns"`
	Stats         *core.Stats `json:"stats,omitempty"`          // fdiam only
	BFSTraversals int64       `json:"bfs_traversals,omitempty"` // baselines only
}

func writeJSON(out io.Writer, algo, graphPath string, diameter, upper int32, infinite, timedOut, cancelled, approximate bool,
	witnessA, witnessB uint32, elapsed time.Duration, st *core.Stats, baselineBFS int64) error {
	witness := func(v uint32) int64 {
		if v == graph.NoVertex {
			return -1
		}
		return int64(v)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(jsonResult{
		Algorithm:     algo,
		Graph:         graphPath,
		Diameter:      diameter,
		Upper:         upper,
		Gap:           upper - diameter,
		Approximate:   approximate,
		Infinite:      infinite,
		TimedOut:      timedOut,
		Cancelled:     cancelled,
		WitnessA:      witness(witnessA),
		WitnessB:      witness(witnessB),
		ElapsedNS:     elapsed.Nanoseconds(),
		Stats:         st,
		BFSTraversals: baselineBFS,
	})
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func report(out io.Writer, diameter, upper int32, infinite, timedOut, cancelled, approximate bool, elapsed time.Duration) {
	switch {
	case timedOut:
		fmt.Fprintf(out, "TIMEOUT after %s (best lower bound: %d)\n", elapsed.Round(time.Millisecond), diameter)
	case cancelled:
		fmt.Fprintf(out, "CANCELLED after %s (best lower bound: %d)\n", elapsed.Round(time.Millisecond), diameter)
	case approximate:
		fmt.Fprintf(out, "diameter: in [%d, %d] (approximate, gap %d)  [%s]\n",
			diameter, upper, upper-diameter, elapsed.Round(time.Microsecond))
	case infinite:
		fmt.Fprintf(out, "diameter: infinite (disconnected); largest CC eccentricity: %d  [%s]\n",
			diameter, elapsed.Round(time.Microsecond))
	default:
		fmt.Fprintf(out, "diameter: %d  [%s]\n", diameter, elapsed.Round(time.Microsecond))
	}
}
