// Command fdiam computes the exact diameter of a graph file with the
// F-Diam algorithm or one of the baseline algorithms.
//
// Usage:
//
//	fdiam [flags] <graph-file>
//
// The input format is auto-detected: fdiam binary CSR, Matrix Market
// (SuiteSparse), DIMACS sp (USA-road-d), or a plain whitespace edge list
// (SNAP). Disconnected inputs are flagged and the largest eccentricity over
// all components is reported, matching the paper's convention.
//
// Examples:
//
//	fdiam road.gr
//	fdiam -algo ifub -workers 1 -timeout 2.5h web.txt
//	fdiam -stats -v snap-edges.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fdiam/internal/baseline"
	"fdiam/internal/core"
	"fdiam/internal/graph"
	"fdiam/internal/graphio"
	"fdiam/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdiam:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fdiam", flag.ContinueOnError)
	algo := fs.String("algo", "fdiam", "algorithm: fdiam, ifub, bounding, korf, naive")
	workers := fs.Int("workers", 0, "parallel workers inside each BFS (0 = all CPUs, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none); the paper used 2.5h")
	showStats := fs.Bool("stats", false, "print F-Diam stage statistics (BFS counts, removal %, timings)")
	noWinnow := fs.Bool("no-winnow", false, "disable Winnow (ablation)")
	noElim := fs.Bool("no-eliminate", false, "disable Eliminate (ablation)")
	noChain := fs.Bool("no-chain", false, "disable Chain Processing (ablation)")
	noU := fs.Bool("no-u", false, "start from vertex 0 instead of the max-degree vertex (ablation)")
	noDirOpt := fs.Bool("no-diropt", false, "force plain top-down BFS (disable the bottom-up switch)")
	alpha := fs.Int("alpha", 0, "direction-heuristic alpha: go bottom-up when modeled bottom-up cost < alpha x top-down cost (0 = default 2)")
	beta := fs.Int("beta", 0, "direction-heuristic beta: return top-down when frontier < n/beta vertices (0 = default 8)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := fs.Bool("v", false, "print graph statistics before solving")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fdiam [flags] <graph-file> (see -h)")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdiam: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fdiam: memprofile:", err)
			}
		}()
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := graphio.ReadAuto(data)
	if err != nil {
		return err
	}
	if *verbose {
		s := graph.ComputeStats(g)
		fmt.Fprintf(out, "graph: %s vertices, %s arcs, avg degree %.1f, max degree %s, %d components\n",
			stats.FormatCount(int64(s.Vertices)), stats.FormatCount(s.Arcs),
			s.AvgDegree, stats.FormatCount(int64(s.MaxDegree)), s.Components)
	}

	start := time.Now()
	switch *algo {
	case "fdiam":
		res := core.Diameter(g, core.Options{
			Workers:             *workers,
			Timeout:             *timeout,
			DisableWinnow:       *noWinnow,
			DisableEliminate:    *noElim,
			DisableChain:        *noChain,
			StartAtVertexZero:   *noU,
			DisableDirectionOpt: *noDirOpt,
			BFSAlpha:            *alpha,
			BFSBeta:             *beta,
		})
		report(out, res.Diameter, res.Infinite, res.TimedOut, time.Since(start))
		if *showStats {
			fmt.Fprintf(out, "stats: %s\n", res.Stats.String())
		}
	case "ifub", "bounding", "korf", "naive":
		opt := baseline.Options{Workers: *workers, Timeout: *timeout}
		var res baseline.Result
		switch *algo {
		case "ifub":
			res = baseline.IFUB(g, opt)
		case "bounding":
			res = baseline.Bounding(g, opt)
		case "korf":
			res = baseline.Korf(g, opt)
		case "naive":
			res = baseline.Naive(g, opt)
		}
		report(out, res.Diameter, res.Infinite, res.TimedOut, time.Since(start))
		if *showStats {
			fmt.Fprintf(out, "stats: bfs-traversals=%d\n", res.BFSTraversals)
		}
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	return nil
}

func report(out io.Writer, diameter int32, infinite, timedOut bool, elapsed time.Duration) {
	switch {
	case timedOut:
		fmt.Fprintf(out, "TIMEOUT after %s (best lower bound: %d)\n", elapsed.Round(time.Millisecond), diameter)
	case infinite:
		fmt.Fprintf(out, "diameter: infinite (disconnected); largest CC eccentricity: %d  [%s]\n",
			diameter, elapsed.Round(time.Microsecond))
	default:
		fmt.Fprintf(out, "diameter: %d  [%s]\n", diameter, elapsed.Round(time.Microsecond))
	}
}
