package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdiam/internal/gen"
	"fdiam/internal/graphio"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.WriteEdgeList(f, gen.Grid2D(6, 6)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComputesDiameter(t *testing.T) {
	path := writeTempGraph(t)
	for _, algo := range []string{"fdiam", "ifub", "bounding", "korf", "naive"} {
		var buf bytes.Buffer
		if _, err := run([]string{"-algo", algo, path}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "diameter: 10") {
			t.Errorf("%s: output %q does not report diameter 10", algo, buf.String())
		}
	}
}

func TestRunStatsAndVerbose(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	if _, err := run([]string{"-stats", "-v", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph:", "diameter: 10", "stats:", "winnow"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblationFlags(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	_, err := run([]string{"-no-winnow", "-no-eliminate", "-no-chain", "-no-u", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("ablated run wrong: %q", buf.String())
	}
}

func TestRunDirectionAndProfileFlags(t *testing.T) {
	path := writeTempGraph(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	_, err := run([]string{
		"-no-diropt", "-alpha", "7", "-beta", "48",
		"-cpuprofile", cpu, "-memprofile", mem, path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("tuned run wrong: %q", buf.String())
	}
	for _, p := range []string{cpu, mem} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
			continue
		}
		// pprof profiles are gzipped protobuf; the gzip magic proves a
		// real profile was serialized, not just an empty file created.
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("profile %s is not a gzipped pprof profile (%d bytes)", p, len(data))
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	if _, err := run([]string{"-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithm string `json:"algorithm"`
		Graph     string `json:"graph"`
		Diameter  int32  `json:"diameter"`
		Infinite  bool   `json:"infinite"`
		TimedOut  bool   `json:"timed_out"`
		WitnessA  int64  `json:"witness_a"`
		WitnessB  int64  `json:"witness_b"`
		ElapsedNS int64  `json:"elapsed_ns"`
		Stats     *struct {
			Vertices    int   `json:"vertices"`
			EccBFS      int64 `json:"ecc_bfs"`
			WinnowCalls int64 `json:"winnow_calls"`
			Removed     int64 `json:"removed_winnow"`
			TimeTotalNS int64 `json:"time_total_ns"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, buf.String())
	}
	if doc.Algorithm != "fdiam" || doc.Diameter != 10 || doc.Infinite || doc.TimedOut {
		t.Errorf("-json result wrong: %+v", doc)
	}
	if doc.WitnessA < 0 || doc.WitnessB < 0 || doc.ElapsedNS <= 0 {
		t.Errorf("-json witnesses/elapsed wrong: %+v", doc)
	}
	if doc.Stats == nil || doc.Stats.Vertices != 36 || doc.Stats.EccBFS == 0 || doc.Stats.TimeTotalNS <= 0 {
		t.Errorf("-json stats wrong: %+v", doc.Stats)
	}

	// Baselines emit bfs_traversals instead of the stats block.
	buf.Reset()
	if _, err := run([]string{"-json", "-algo", "ifub", path}, &buf); err != nil {
		t.Fatal(err)
	}
	var base struct {
		Diameter      int32            `json:"diameter"`
		WitnessA      int64            `json:"witness_a"`
		Stats         *json.RawMessage `json:"stats"`
		BFSTraversals int64            `json:"bfs_traversals"`
	}
	if err := json.Unmarshal(buf.Bytes(), &base); err != nil {
		t.Fatalf("baseline -json not JSON: %v\n%s", err, buf.String())
	}
	if base.Diameter != 10 || base.WitnessA != -1 || base.Stats != nil || base.BFSTraversals == 0 {
		t.Errorf("baseline -json wrong: %+v (%s)", base, buf.String())
	}
}

func TestRunTraceAndEventsFlags(t *testing.T) {
	path := writeTempGraph(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.trace.json")
	events := filepath.Join(dir, "run.ndjson")
	var buf bytes.Buffer
	if _, err := run([]string{"-trace", trace, "-events", events, path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("-trace output is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("-trace output is empty")
	}
	begins, ends := 0, 0
	for _, e := range evs {
		switch e["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("trace has %d B and %d E events, want equal and > 0", begins, ends)
	}
	data, err = os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("-events line %d is not JSON: %s", i+1, line)
		}
	}

	// The observability flags are wired to the F-Diam solver only.
	if _, err := run([]string{"-algo", "ifub", "-trace", trace, path}, &buf); err == nil {
		t.Error("-trace with a baseline algorithm accepted")
	}
}

func TestRunProgressFlag(t *testing.T) {
	// -progress writes to stderr; swap it for a pipe for the duration.
	path := writeTempGraph(t)
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = wr
	_, runErr := run([]string{"-progress", "1ms", "-workers", "1", path}, io.Discard)
	os.Stderr = old
	wr.Close()
	out, _ := io.ReadAll(rd)
	rd.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	// The run may finish before the first tick on a tiny graph; only the
	// format is asserted when lines did appear.
	if s := string(out); len(s) > 0 && (!strings.Contains(s, "fdiam: stage=") || !strings.Contains(s, "bound=")) {
		t.Errorf("-progress output wrong: %q", s)
	}
}

func TestRunHTTPFlag(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	// 127.0.0.1:0 picks a free port; the server only lives for the run,
	// so this is a smoke test that the flag wires up and tears down.
	if _, err := run([]string{"-http", "127.0.0.1:0", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("-http run wrong: %q", buf.String())
	}
}

func TestRunDisconnectedReportsInfinite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.txt")
	f, _ := os.Create(path)
	if err := graphio.WriteEdgeList(f, gen.Disjoint(gen.Path(4), gen.Path(8))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if _, err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "infinite") || !strings.Contains(buf.String(), "7") {
		t.Errorf("disconnected output wrong: %q", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{}, &buf); err == nil {
		t.Error("missing file arg accepted")
	}
	if _, err := run([]string{"/nonexistent/file"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTempGraph(t)
	if _, err := run([]string{"-algo", "nope", path}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunCheckpointFlags(t *testing.T) {
	path := writeTempGraph(t)
	ckDir := filepath.Join(t.TempDir(), "ckpt")
	var buf bytes.Buffer
	if _, err := run([]string{"-checkpoint-dir", ckDir, "-checkpoint-interval", "1ms", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("checkpointed run wrong: %q", buf.String())
	}
	// A completed run retires its snapshot; the directory itself remains.
	if _, err := os.Stat(filepath.Join(ckDir, "state.ckpt")); !os.IsNotExist(err) {
		t.Errorf("completed run left a snapshot: %v", err)
	}
	// Checkpointing is an F-Diam feature; baselines must reject the flag.
	if _, err := run([]string{"-algo", "ifub", "-checkpoint-dir", ckDir, path}, &buf); err == nil {
		t.Error("baseline accepted -checkpoint-dir")
	}
}

func TestRunExitCodes(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	if code, err := run([]string{path}, &buf); err != nil || code != exitOK {
		t.Errorf("clean solve: code %d err %v, want %d nil", code, err, exitOK)
	}
	if code, err := run([]string{"/nonexistent/file"}, &buf); err == nil || code != exitError {
		t.Errorf("missing file: code %d err %v, want %d and an error", code, err, exitError)
	}
}

func TestRunTimedOutExitCode(t *testing.T) {
	// A graph big enough that a 1ns deadline always fires before the solve
	// finishes, and a seed small enough to build instantly.
	path := filepath.Join(t.TempDir(), "big.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteEdgeList(f, gen.Grid2D(200, 200)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	code, err := run([]string{"-timeout", "1ns", path}, &buf)
	if err != nil || code != exitTimedOut {
		t.Fatalf("timed-out solve: code %d err %v, want %d nil", code, err, exitTimedOut)
	}
	if !strings.Contains(buf.String(), "TIMEOUT") {
		t.Errorf("timed-out run still reported: %q", buf.String())
	}
}

func TestSolveExitCodeMapping(t *testing.T) {
	if got := solveExitCode(false, false); got != exitOK {
		t.Errorf("clean = %d, want %d", got, exitOK)
	}
	if got := solveExitCode(false, true); got != exitCancelled {
		t.Errorf("cancelled = %d, want %d", got, exitCancelled)
	}
	if got := solveExitCode(true, false); got != exitTimedOut {
		t.Errorf("timed out = %d, want %d", got, exitTimedOut)
	}
	// A deadline firing is itself a cancellation; the timeout code wins.
	if got := solveExitCode(true, true); got != exitTimedOut {
		t.Errorf("both = %d, want %d", got, exitTimedOut)
	}
}

func TestRunFaultsListAndValidation(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-faults", "list"}, &buf)
	if err != nil || code != exitOK {
		t.Fatalf("-faults=list: code %d err %v", code, err)
	}
	// The inventory is per-binary: fdiam links the solver and I/O points
	// (the serve/cluster points live in fdiamd).
	for _, want := range []string{"graphio.short_read", "checkpoint.torn_write"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-faults=list output missing %s:\n%s", want, buf.String())
		}
	}
	path := writeTempGraph(t)
	if code, err := run([]string{"-faults", "no.such.point", path}, &buf); err == nil || code != exitError {
		t.Errorf("bad -faults spec: code %d err %v, want fail-fast", code, err)
	}
}
