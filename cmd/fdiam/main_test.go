package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdiam/internal/gen"
	"fdiam/internal/graphio"
)

func writeTempGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graphio.WriteEdgeList(f, gen.Grid2D(6, 6)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunComputesDiameter(t *testing.T) {
	path := writeTempGraph(t)
	for _, algo := range []string{"fdiam", "ifub", "bounding", "korf", "naive"} {
		var buf bytes.Buffer
		if err := run([]string{"-algo", algo, path}, &buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(buf.String(), "diameter: 10") {
			t.Errorf("%s: output %q does not report diameter 10", algo, buf.String())
		}
	}
}

func TestRunStatsAndVerbose(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	if err := run([]string{"-stats", "-v", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph:", "diameter: 10", "stats:", "winnow"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAblationFlags(t *testing.T) {
	path := writeTempGraph(t)
	var buf bytes.Buffer
	err := run([]string{"-no-winnow", "-no-eliminate", "-no-chain", "-no-u", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("ablated run wrong: %q", buf.String())
	}
}

func TestRunDirectionAndProfileFlags(t *testing.T) {
	path := writeTempGraph(t)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run([]string{
		"-no-diropt", "-alpha", "7", "-beta", "48",
		"-cpuprofile", cpu, "-memprofile", mem, path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diameter: 10") {
		t.Errorf("tuned run wrong: %q", buf.String())
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s not written: %v", p, err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunDisconnectedReportsInfinite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.txt")
	f, _ := os.Create(path)
	if err := graphio.WriteEdgeList(f, gen.Disjoint(gen.Path(4), gen.Path(8))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "infinite") || !strings.Contains(buf.String(), "7") {
		t.Errorf("disconnected output wrong: %q", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing file arg accepted")
	}
	if err := run([]string{"/nonexistent/file"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTempGraph(t)
	if err := run([]string{"-algo", "nope", path}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
