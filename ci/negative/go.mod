module negative.example/fdiam

go 1.24
