// Package core is the CI negative control: a deliberately broken package,
// in its own nested module so the root ./... patterns never see it, that
// the analyzers must fail. Each function below violates one of the
// interprocedural rules; CI (and `make lint-negative`) assert that
// fdiamlint exits non-zero and names ctxflow, deepalloc, and boundmono.
// If a refactor of the fact substrate silently stops detecting one of
// these shapes, this fixture is the tripwire.
package core

import (
	"context"
	"time"
)

type solver struct {
	ecc   []int32
	stage []uint8
	bound int32
	ubCap int32
}

// clobberLB overwrites the lower bound non-monotonically outside any
// //fdiam:boundsetter function: boundmono must flag the write.
func (s *solver) clobberLB(v int32) {
	s.bound = v
}

// kernel outsources its allocation to a helper one call away — invisible
// to syntactic hotalloc, flagged by deepalloc via the Allocates fact.
//
//fdiam:hotpath
func kernel(n int) []int32 {
	return scratch(n)
}

func scratch(n int) []int32 {
	return make([]int32, n)
}

// Solve receives a ctx, blocks, and never consults it: ctxflow rule C.
func Solve(ctx context.Context, c chan int32) int32 {
	time.Sleep(time.Millisecond)
	return <-c
}
